package graphpim

import (
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	g := GenerateLDBC(1024, 7)
	run := NewRun(g, DefaultOptions())
	base := run.Execute(NewBFS(0), ConfigBaseline)
	gpim := run.Execute(NewBFS(0), ConfigGraphPIM)
	if base.Cycles == 0 || gpim.Cycles == 0 {
		t.Fatal("zero-cycle runs")
	}
	if gpim.Speedup(base) <= 1.0 {
		t.Fatalf("GraphPIM speedup %.2f <= 1 on BFS", gpim.Speedup(base))
	}
}

func TestExecuteFullReturnsFunctionalOutput(t *testing.T) {
	g := GenerateLDBC(512, 7)
	run := NewRun(g, DefaultOptions())
	_, out := run.ExecuteFull(NewBFS(0), ConfigGraphPIM)
	if out == nil {
		t.Fatal("no functional output")
	}
}

func TestNewRunValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("17 threads did not panic")
		}
	}()
	NewRun(GenerateLDBC(64, 1), Options{Threads: 17})
}

func TestUnknownConfigPanics(t *testing.T) {
	run := NewRun(GenerateLDBC(64, 1), DefaultOptions())
	defer func() {
		if recover() == nil {
			t.Fatal("unknown config did not panic")
		}
	}()
	run.Execute(NewDC(), Config("bogus"))
}

func TestExperimentRegistryViaFacade(t *testing.T) {
	if len(Experiments()) != 21 {
		t.Fatalf("Experiments() = %d, want 21", len(Experiments()))
	}
	tb, err := RunExperiment("table5-flits", QuickEnv())
	if err != nil || len(tb.Rows) == 0 {
		t.Fatalf("RunExperiment failed: %v", err)
	}
	if _, err := RunExperiment("nope", nil); err == nil {
		t.Fatal("unknown experiment did not error")
	}
}

func TestWorkloadLookupViaFacade(t *testing.T) {
	w, err := WorkloadByName("PRank")
	if err != nil {
		t.Fatal(err)
	}
	if !w.Info().NeedsFPExtension {
		t.Fatal("PRank should require the FP extension")
	}
	if len(AllWorkloads()) != 13 || len(EvalWorkloads()) != 8 {
		t.Fatal("suite sizes wrong")
	}
}
