package graphpim

import (
	"reflect"
	"strings"
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	g := GenerateLDBC(1024, 7)
	run := NewRun(g, DefaultOptions())
	base := run.Execute(NewBFS(0), ConfigBaseline)
	gpim := run.Execute(NewBFS(0), ConfigGraphPIM)
	if base.Cycles == 0 || gpim.Cycles == 0 {
		t.Fatal("zero-cycle runs")
	}
	if gpim.Speedup(base) <= 1.0 {
		t.Fatalf("GraphPIM speedup %.2f <= 1 on BFS", gpim.Speedup(base))
	}
}

func TestExecuteFullReturnsFunctionalOutput(t *testing.T) {
	g := GenerateLDBC(512, 7)
	run := NewRun(g, DefaultOptions())
	_, out := run.ExecuteFull(NewBFS(0), ConfigGraphPIM)
	if out == nil {
		t.Fatal("no functional output")
	}
}

func TestNewRunValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("17 threads did not panic")
		}
	}()
	NewRun(GenerateLDBC(64, 1), Options{Threads: 17})
}

func TestUnknownConfigPanics(t *testing.T) {
	run := NewRun(GenerateLDBC(64, 1), DefaultOptions())
	defer func() {
		if recover() == nil {
			t.Fatal("unknown config did not panic")
		}
	}()
	run.Execute(NewDC(), Config("bogus"))
}

func TestExperimentRegistryViaFacade(t *testing.T) {
	if len(Experiments()) != 21 {
		t.Fatalf("Experiments() = %d, want 21", len(Experiments()))
	}
	tb, err := RunExperiment("table5-flits", QuickEnv())
	if err != nil || len(tb.Rows) == 0 {
		t.Fatalf("RunExperiment failed: %v", err)
	}
	if _, err := RunExperiment("nope", nil); err == nil {
		t.Fatal("unknown experiment did not error")
	}
}

// TestGNNFamilyExecutionIdentity: every GNN/SpMV-family workload must
// produce identical timing results AND identical functional output
// across scheduler shard counts and across the materialized/streamed
// trace pipelines — the same byte-identity contract the Table III suite
// holds (DESIGN.md §12-13), extended to the new family.
func TestGNNFamilyExecutionIdentity(t *testing.T) {
	g := GenerateLDBC(512, 7)
	for _, mk := range []func() Workload{
		func() Workload { return NewSpMV(2) },
		func() Workload { return NewGNNMean(4) },
		func() Workload { return NewGNNMax(4) },
		func() Workload { return NewTCFeat(4) },
	} {
		name := mk().Info().Name
		refOpts := DefaultOptions()
		refRes, refOut := NewRun(g, refOpts).ExecuteFull(mk(), ConfigGraphPIM)
		for _, v := range []struct {
			label  string
			shards int
			stream bool
		}{
			{"shards=4", 4, false},
			{"stream", 0, true},
			{"shards=4+stream", 4, true},
		} {
			opts := refOpts
			opts.Shards = v.shards
			opts.Stream = v.stream
			res, out := NewRun(g, opts).ExecuteFull(mk(), ConfigGraphPIM)
			if !reflect.DeepEqual(res, refRes) {
				t.Fatalf("%s/%s: timing result diverges from serial materialized run", name, v.label)
			}
			if !reflect.DeepEqual(out, refOut) {
				t.Fatalf("%s/%s: functional output diverges from serial materialized run", name, v.label)
			}
		}
	}
}

// TestAutoPolicyViaFacade: Options.Policy="auto" must resolve to one of
// the static placements, record the choice in Result.Config, and explain
// it through the tune.* counters.
func TestAutoPolicyViaFacade(t *testing.T) {
	g := GenerateLDBC(512, 7)
	opts := DefaultOptions()
	opts.Policy = "auto"
	res := NewRun(g, opts).Execute(NewGNNMean(4), ConfigGraphPIM)
	if !strings.HasPrefix(res.Config, "Auto(") {
		t.Fatalf("auto run config = %q, want Auto(...)", res.Config)
	}
	if _, ok := res.Stats["tune.placement"]; !ok {
		t.Fatal("auto run did not record tune.* counters")
	}
	// The baseline argument is exempt from policy remapping: it stays
	// the denominator.
	base := NewRun(g, opts).Execute(NewGNNMean(4), ConfigBaseline)
	if base.Config != "Baseline" {
		t.Fatalf("baseline remapped under auto policy: %q", base.Config)
	}
	bad := DefaultOptions()
	bad.Policy = "bogus"
	if err := bad.Validate(); err == nil {
		t.Fatal("bogus policy validated")
	}
}

func TestWorkloadLookupViaFacade(t *testing.T) {
	w, err := WorkloadByName("PRank")
	if err != nil {
		t.Fatal(err)
	}
	if !w.Info().NeedsFPExtension {
		t.Fatal("PRank should require the FP extension")
	}
	if len(AllWorkloads()) != 13 || len(EvalWorkloads()) != 8 {
		t.Fatal("suite sizes wrong")
	}
}
