// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, as indexed in DESIGN.md. Each benchmark drives the
// corresponding harness experiment end to end (trace generation +
// cycle-level simulation of every configuration the figure needs) and
// prints the paper-style table once.
//
// Benchmarks share one memoized environment, so the first benchmark
// touching a given workload/config pays for the simulation and later ones
// reuse it — mirroring how the harness CLI amortizes runs across figures.
package graphpim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"graphpim/internal/graph"
	"graphpim/internal/machine"
	"graphpim/internal/memmap"
	"graphpim/internal/sim"
	"graphpim/internal/trace"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *Env
	benchPrinted sync.Map
)

func getBenchEnv() *Env {
	benchEnvOnce.Do(func() {
		benchEnv = QuickEnv()
	})
	return benchEnv
}

// benchExperiment runs one harness experiment per iteration and prints
// its table the first time.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	env := getBenchEnv()
	var tb *Table
	for i := 0; i < b.N; i++ {
		t, err := RunExperiment(id, env)
		if err != nil {
			b.Fatal(err)
		}
		tb = t
	}
	if _, done := benchPrinted.LoadOrStore(id, true); !done && tb != nil {
		fmt.Printf("\n%s\n", tb.String())
	}
}

// Figure 1: IPC of graph workloads on the baseline system.
func BenchmarkFig1IPC(b *testing.B) { benchExperiment(b, "fig1-ipc") }

// Figure 2: execution-cycle breakdown and MPKI.
func BenchmarkFig2Breakdown(b *testing.B) { benchExperiment(b, "fig2-breakdown") }

// Figure 4: atomic-instruction overhead micro-benchmark.
func BenchmarkFig4AtomicOverhead(b *testing.B) { benchExperiment(b, "fig4-atomic-overhead") }

// Table I: HMC 2.0 atomic command set.
func BenchmarkTable1Atomics(b *testing.B) { benchExperiment(b, "table1-hmc-atomics") }

// Table II: PIM offloading targets.
func BenchmarkTable2Targets(b *testing.B) { benchExperiment(b, "table2-offload-targets") }

// Table III: PIM-atomic applicability across the GraphBIG suite.
func BenchmarkTable3Applicability(b *testing.B) { benchExperiment(b, "table3-applicability") }

// Table IV: simulation configuration.
func BenchmarkTable4Config(b *testing.B) { benchExperiment(b, "table4-config") }

// Figure 7: speedups over the baseline system.
func BenchmarkFig7Speedup(b *testing.B) { benchExperiment(b, "fig7-speedup") }

// Figure 9: execution-time breakdown (Atomic-inCore/inCache/Other).
func BenchmarkFig9Breakdown(b *testing.B) { benchExperiment(b, "fig9-atomic-breakdown") }

// Figure 10: cache miss rate of offloading candidates.
func BenchmarkFig10MissRate(b *testing.B) { benchExperiment(b, "fig10-missrate") }

// Figure 11: sensitivity to PIM functional units per vault.
func BenchmarkFig11FUSweep(b *testing.B) { benchExperiment(b, "fig11-fu-sweep") }

// Table V: FLIT costs per transaction type.
func BenchmarkTable5Flits(b *testing.B) { benchExperiment(b, "table5-flits") }

// Figure 12: normalized bandwidth consumption.
func BenchmarkFig12Bandwidth(b *testing.B) { benchExperiment(b, "fig12-bandwidth") }

// Figure 13: sensitivity to HMC link bandwidth.
func BenchmarkFig13LinkBW(b *testing.B) { benchExperiment(b, "fig13-linkbw") }

// Table VI: the LDBC dataset family.
func BenchmarkTable6Datasets(b *testing.B) { benchExperiment(b, "table6-datasets") }

// Figure 14: sensitivity to graph size.
func BenchmarkFig14SizeSweep(b *testing.B) { benchExperiment(b, "fig14-size-sweep") }

// Figure 15: uncore energy breakdown.
func BenchmarkFig15Energy(b *testing.B) { benchExperiment(b, "fig15-energy") }

// Table VII: real-world application configuration.
func BenchmarkTable7AppConfig(b *testing.B) { benchExperiment(b, "table7-appconfig") }

// Table VIII: real-world application counters.
func BenchmarkTable8AppCounters(b *testing.B) { benchExperiment(b, "table8-appcounters") }

// Figure 16: analytical model validation.
func BenchmarkFig16ModelValidation(b *testing.B) { benchExperiment(b, "fig16-model-validation") }

// Figure 17: real-world application performance and energy.
func BenchmarkFig17RealWorld(b *testing.B) { benchExperiment(b, "fig17-realworld") }

// BenchmarkStatsHotPath compares the per-cycle counter-update paths: the
// string-keyed Stats API (map lookup + string hashing per bump, plus a
// concat for region-qualified names) against the pre-resolved Counter
// handles the timing models now use in their tick loops.
func BenchmarkStatsHotPath(b *testing.B) {
	regions := []string{"meta", "struct", "property"}
	b.Run("string-keyed", func(b *testing.B) {
		st := sim.NewStats()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st.Inc("cpu.cycles.active")
			st.Add("cpu.retired", 2)
			st.Inc("mem.loads." + regions[i%3])
		}
	})
	b.Run("handle", func(b *testing.B) {
		st := sim.NewStats()
		active := st.Counter("cpu.cycles.active")
		retired := st.Counter("cpu.retired")
		loads := [3]sim.Counter{
			st.Counter("mem.loads.meta"),
			st.Counter("mem.loads.struct"),
			st.Counter("mem.loads.property"),
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			active.Inc()
			retired.Add(2)
			loads[i%3].Inc()
		}
	})
}

// benchTrace builds a BFS-like synthetic trace (the Fig. 3 access mix:
// meta accesses, sequential structure loads, irregular property loads,
// and lock-free CAS updates) sized for steady-state machine replay.
func benchTrace(threads, opsPerThread int) (*memmap.AddressSpace, *trace.Trace) {
	const propVerts = 1 << 18
	sp := memmap.NewAddressSpace()
	meta := sp.AllocMeta(4096)
	structure := sp.AllocStruct(propVerts * 8)
	prop := sp.PMRMalloc(propVerts * 8)
	b := trace.NewBuilder(sp, threads)
	r := sim.NewRand(42)
	for t := 0; t < threads; t++ {
		e := b.Thread(t)
		for i := 0; i < opsPerThread; i++ {
			e.Load(meta+memmap.Addr((i%32)*8), 8, false)
			e.Compute(2)
			e.Load(structure+memmap.Addr((i%propVerts)*8), 8, false)
			if i%4 == 0 {
				e.Load(prop+memmap.Addr(r.Intn(propVerts)*8), 8, true)
			}
			e.Atomic(trace.AtomicCAS, prop+memmap.Addr(r.Intn(propVerts)*8), 8,
				false, true, r.Intn(10) == 0)
			e.DependentCompute(3)
			e.Store(meta+memmap.Addr((i%32)*8), 8, false)
		}
	}
	b.Barrier()
	tr := b.Build()
	sp.Freeze()
	tr.Freeze()
	return sp, tr
}

// BenchmarkMachineRun measures one full machine replay per configuration
// on the shared synthetic trace: the pure cost of the event scheduler,
// core model, cache hierarchy, and HMC, with no trace generation inside
// the timed loop.
func BenchmarkMachineRun(b *testing.B) {
	sp, tr := benchTrace(16, 2000)
	instrs := tr.TotalInstructions()
	for _, cfg := range []machine.Config{
		machine.Baseline(), machine.GraphPIM(false), machine.UPEI(false),
	} {
		b.Run(cfg.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				machine.RunTrace(cfg, sp, tr)
			}
			b.ReportMetric(float64(instrs)*float64(b.N)/b.Elapsed().Seconds(), "instrs/s")
		})
	}
}

// benchComputeTrace builds a compute-dominant trace: long ALU batches
// with sparse memory traffic, the regime where cores spend most cycles
// in provably core-local work and the epoch-sharded scheduler gets wide
// parallel windows.
func benchComputeTrace(threads, opsPerThread int) (*memmap.AddressSpace, *trace.Trace) {
	const propVerts = 1 << 16
	sp := memmap.NewAddressSpace()
	prop := sp.PMRMalloc(propVerts * 8)
	b := trace.NewBuilder(sp, threads)
	r := sim.NewRand(43)
	for t := 0; t < threads; t++ {
		e := b.Thread(t)
		for i := 0; i < opsPerThread; i++ {
			e.Compute(150 + r.Intn(100))
			if i%8 == 7 {
				e.Load(prop+memmap.Addr(r.Intn(propVerts)*8), 8, false)
			}
		}
	}
	b.Barrier()
	tr := b.Build()
	sp.Freeze()
	tr.Freeze()
	return sp, tr
}

// BenchmarkMachineRunSharded measures the epoch-sharded scheduler
// against its own shards=1 serial path on the compute-dominant trace.
// The shards>1 results only show wall-clock wins on a multi-core host
// (see num_cpu/gomaxprocs in BENCH_*.json); results are byte-identical
// at every shard count regardless.
func BenchmarkMachineRunSharded(b *testing.B) {
	sp, tr := benchComputeTrace(16, 400)
	instrs := tr.TotalInstructions()
	for _, shards := range []int{1, 2, 4, 8} {
		cfg := machine.Baseline()
		cfg.Shards = shards
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				machine.RunTrace(cfg, sp, tr)
			}
			b.ReportMetric(float64(instrs)*float64(b.N)/b.Elapsed().Seconds(), "instrs/s")
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed: simulated
// instructions per wall second on a BFS trace, independent of the
// experiment harness. This is the number to watch when optimizing the
// timing models.
func BenchmarkSimulatorThroughput(b *testing.B) {
	g := GenerateLDBC(2048, 7)
	run := NewRun(g, DefaultOptions())
	bfs := NewBFS(0)
	var instrs uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := run.Execute(bfs, ConfigGraphPIM)
		instrs += res.Instructions
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
}

// benchPipeline measures one full pipeline — functional trace
// generation plus machine replay — with the heap sampled throughout, so
// the materialized and streamed variants can be compared on both
// throughput and peak memory (the streamed pipeline trades a little
// encode/decode work for an O(trace) → O(graph + chunk windows) drop
// in footprint; BENCH_pr7.json records both sides).
func benchPipeline(b *testing.B, stream bool) {
	g := GenerateLDBC(1<<15, 7)
	opts := DefaultOptions()
	opts.Stream = stream
	run := NewRun(g, opts)
	bfs := NewBFS(0)

	runtime.GC()
	var peak atomic.Uint64
	done := make(chan struct{})
	sampled := make(chan struct{})
	go func() {
		defer close(sampled)
		var ms runtime.MemStats
		for {
			runtime.ReadMemStats(&ms)
			for {
				p := peak.Load()
				if ms.HeapAlloc <= p || peak.CompareAndSwap(p, ms.HeapAlloc) {
					break
				}
			}
			select {
			case <-done:
				return
			case <-time.After(10 * time.Millisecond):
			}
		}
	}()

	var instrs uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := run.Execute(bfs, ConfigGraphPIM)
		instrs += res.Instructions
	}
	b.StopTimer()
	close(done)
	<-sampled
	b.ReportMetric(float64(peak.Load()), "peak-bytes")
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkTracePipeline is the before/after pair for the streaming
// trace pipeline: same graph, same workload, same config; only the
// trace transport differs.
func BenchmarkTracePipeline(b *testing.B) {
	b.Run("materialized", func(b *testing.B) { benchPipeline(b, false) })
	b.Run("streamed", func(b *testing.B) { benchPipeline(b, true) })
}

// benchGraphBuild measures one LDBC-1M construction per iteration with
// the heap sampled throughout. The legacy arm materializes the stream
// into a Builder and runs the historical sort-and-scatter Build; the
// streaming arm runs the two-pass BuildStream over the same stream. The
// equivalence suite guarantees both arms produce identical graphs, so
// peak-bytes is the whole story.
func benchGraphBuild(b *testing.B, streaming bool) {
	const vertices = 1 << 20

	runtime.GC()
	var peak atomic.Uint64
	done := make(chan struct{})
	sampled := make(chan struct{})
	go func() {
		defer close(sampled)
		var ms runtime.MemStats
		for {
			runtime.ReadMemStats(&ms)
			for {
				p := peak.Load()
				if ms.HeapAlloc <= p || peak.CompareAndSwap(p, ms.HeapAlloc) {
					break
				}
			}
			select {
			case <-done:
				return
			case <-time.After(10 * time.Millisecond):
			}
		}
	}()

	var edges int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := StreamLDBC(vertices, 7)
		var g *Graph
		if streaming {
			var err error
			g, err = BuildGraphStream(s, true)
			if err != nil {
				b.Fatal(err)
			}
		} else {
			bld := graph.NewBuilder(vertices)
			if err := s.Edges(func(src, dst VID, w uint32) bool {
				bld.AddWeightedEdge(src, dst, w)
				return true
			}); err != nil {
				b.Fatal(err)
			}
			g = bld.Build(true)
		}
		edges = g.NumEdges()
	}
	b.StopTimer()
	close(done)
	<-sampled
	b.ReportMetric(float64(peak.Load()), "peak-bytes")
	b.ReportMetric(float64(edges), "edges")
}

// BenchmarkGraphBuild is the before/after pair for the streaming
// two-pass graph build at the LDBC-1M scale point (~29M raw edges):
// same generator stream, same dedup, identical resulting graph; only
// the construction path differs.
func BenchmarkGraphBuild(b *testing.B) {
	b.Run("legacy", func(b *testing.B) { benchGraphBuild(b, false) })
	b.Run("streaming", func(b *testing.B) { benchGraphBuild(b, true) })
}
