module graphpim

go 1.24
