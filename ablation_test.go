// Ablation benchmarks for the modeling decisions DESIGN.md §6 calls out.
// Each ablation disables one mechanism and reports how the headline
// numbers move, quantifying how much of the paper's story each mechanism
// carries.
package graphpim

import (
	"fmt"
	"sync"
	"testing"

	"graphpim/internal/gframe"
	"graphpim/internal/machine"
	"graphpim/internal/workloads"
)

var ablationOnce sync.Map

func ablationPrint(key, format string, args ...any) {
	if _, done := ablationOnce.LoadOrStore(key, true); !done {
		fmt.Printf(format, args...)
	}
}

// ablationRun simulates DC (the purest atomic-throughput workload) on a
// small graph under a tweaked machine configuration.
func ablationRun(b *testing.B, cost gframe.CostModel, mutate func(*machine.Config), kind string) machine.Result {
	b.Helper()
	g := GenerateLDBC(2048, 7)
	fw := gframe.New(g, 16, cost)
	w := workloads.NewDC()
	w.Run(fw)
	var cfg machine.Config
	switch kind {
	case "baseline":
		cfg = machine.Baseline()
	case "graphpim":
		cfg = machine.GraphPIM(false)
		cfg.POU.PMRActive = true
	}
	cfg.Cache.L2Size = 128 << 10
	cfg.Cache.L3Size = 128 << 10
	if mutate != nil {
		mutate(&cfg)
	}
	return machine.RunTrace(cfg, fw.Space(), fw.Trace())
}

// BenchmarkAblationFenceSemantics quantifies decision 1: host atomics as
// full fences. Removing the fence (modeling atomics as plain RMWs with no
// freeze would require a different core) is approximated here by comparing
// the baseline against the same trace with atomics stripped — the fence
// cost is the entire gap GraphPIM can reclaim.
func BenchmarkAblationFenceSemantics(b *testing.B) {
	cost := gframe.DefaultCostModel()
	var with, without uint64
	for i := 0; i < b.N; i++ {
		g := GenerateLDBC(2048, 7)
		fw := gframe.New(g, 16, cost)
		workloads.NewDC().Run(fw)
		cfg := machine.Baseline()
		cfg.Cache.L2Size = 128 << 10
		cfg.Cache.L3Size = 128 << 10
		tr := fw.Trace()
		with = machine.RunTrace(cfg, fw.Space(), tr).Cycles
		without = machine.RunTrace(cfg, fw.Space(), tr.StripAtomics()).Cycles
	}
	ablationPrint("fence", "\nablation[fence]: DC baseline %d cycles with atomics, %d without (fence cost %.0f%%)\n",
		with, without, (1-float64(without)/float64(with))*100)
}

// BenchmarkAblationScatteredStructure quantifies decision 3: GraphBIG's
// pointer-chase adjacency vs a dense sequential CSR. The dense layout
// makes the non-atomic portion cache-friendly and inflates GraphPIM's
// apparent speedup — which is why the scattered layout is the default.
func BenchmarkAblationScatteredStructure(b *testing.B) {
	var sScattered, sDense float64
	for i := 0; i < b.N; i++ {
		for _, scattered := range []bool{true, false} {
			cost := gframe.DefaultCostModel()
			cost.ScatteredStructure = scattered
			base := ablationRun(b, cost, nil, "baseline")
			gpim := ablationRun(b, cost, nil, "graphpim")
			if scattered {
				sScattered = gpim.Speedup(base)
			} else {
				sDense = gpim.Speedup(base)
			}
		}
	}
	ablationPrint("scatter", "\nablation[structure]: DC GraphPIM speedup %.2fx with pointer-chase adjacency, %.2fx with dense CSR\n",
		sScattered, sDense)
}

// BenchmarkAblationUCOrdering quantifies decision 5: the UC issue gap.
// With the gap removed, uncacheable sub-line reads enjoy full MLP and
// cache bypassing becomes a free win even for cache-friendly scans,
// contradicting the paper's kCore and small-graph results.
func BenchmarkAblationUCOrdering(b *testing.B) {
	var withGap, noGap float64
	for i := 0; i < b.N; i++ {
		g := GenerateLDBC(2048, 7)
		fw := gframe.New(g, 16, gframe.DefaultCostModel())
		workloads.NewKCore(3).Run(fw)
		tr := fw.Trace()
		base := machine.Baseline()
		base.Cache.L2Size = 128 << 10
		base.Cache.L3Size = 128 << 10
		baseRes := machine.RunTrace(base, fw.Space(), tr)
		for _, gap := range []uint64{16, 0} {
			cfg := machine.GraphPIM(false)
			cfg.POU.PMRActive = true
			cfg.Cache.L2Size = 128 << 10
			cfg.Cache.L3Size = 128 << 10
			cfg.UCIssueGap = gap
			r := machine.RunTrace(cfg, fw.Space(), tr)
			if gap > 0 {
				withGap = r.Speedup(baseRes)
			} else {
				noGap = r.Speedup(baseRes)
			}
		}
	}
	ablationPrint("ucgap", "\nablation[uc-ordering]: kCore GraphPIM speedup %.2fx with UC ordering, %.2fx without\n",
		withGap, noGap)
}

// BenchmarkAblationFUCount is the Fig. 11 ablation in miniature: one FU
// per vault vs sixteen.
func BenchmarkAblationFUCount(b *testing.B) {
	var fu16, fu1 uint64
	for i := 0; i < b.N; i++ {
		fu16 = ablationRun(b, gframe.DefaultCostModel(), func(c *machine.Config) {
			c.HMC.IntFUsPerVault = 16
		}, "graphpim").Cycles
		fu1 = ablationRun(b, gframe.DefaultCostModel(), func(c *machine.Config) {
			c.HMC.IntFUsPerVault = 1
		}, "graphpim").Cycles
	}
	ablationPrint("fu", "\nablation[fu-count]: DC GraphPIM %d cycles @16 FU/vault, %d @1 FU/vault (%.1f%% difference)\n",
		fu16, fu1, (float64(fu1)/float64(fu16)-1)*100)
}
