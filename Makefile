GO ?= go

.PHONY: build vet test race bench bench-json fuzz-short smoke-stream smoke-graph

build:
	$(GO) build ./...

# vet is the static gate: go vet plus a gofmt cleanliness check.
vet:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# The default test target runs the static gate, the plain suite, and the
# race suite: the parallel experiment engine's frozen-trace/space design
# (memoized cells replayed from many goroutines) must keep the race
# detector silent on every change.
# The race suite gets an explicit per-package timeout: the harness
# package replays full (quick-scale) experiments under the detector's
# ~10x slowdown and brushes against go test's default 10m limit.
test: build vet
	$(GO) test ./...
	$(GO) test -race -timeout 20m ./...

race:
	$(GO) test -race -timeout 20m ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./...

# fuzz-short runs every native fuzz target for a few seconds each,
# starting from the committed corpora in testdata/fuzz/. It is the CI
# smoke for the metamorphic harness; long exploratory sessions use
# `go test -fuzz=<target> -fuzztime=10m ./internal/<pkg>/` directly.
FUZZTIME ?= 10s
fuzz-short:
	$(GO) test -run '^$$' -fuzz '^FuzzRead$$' -fuzztime $(FUZZTIME) ./internal/trace/
	$(GO) test -run '^$$' -fuzz '^FuzzBuilder$$' -fuzztime $(FUZZTIME) ./internal/trace/
	$(GO) test -run '^$$' -fuzz '^FuzzReadEdgeList$$' -fuzztime $(FUZZTIME) ./internal/graph/
	$(GO) test -run '^$$' -fuzz '^FuzzBuildStream$$' -fuzztime $(FUZZTIME) ./internal/graph/
	$(GO) test -run '^$$' -fuzz '^FuzzLinkLaneReserve$$' -fuzztime $(FUZZTIME) ./internal/hmc/
	$(GO) test -run '^$$' -fuzz '^FuzzTimeq$$' -fuzztime $(FUZZTIME) ./internal/cpu/

# bench-json records the current PR's benchmark set (best of 3 reps)
# into its committed trajectory file. For PR 10 that is the SpMV
# trace-generation benchmark — the hot emit path of the GNN/SpMV
# workload family. Run it after a performance-relevant change and
# commit the updated file. (Earlier trajectories: BENCH_pr8.json held
# BenchmarkGraphBuild for the streaming builder PR.)
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_pr10.json -phase after \
		-pkg ./internal/workloads/ -bench 'BenchmarkSpMVAggregation'

# smoke-stream runs the million-vertex streaming smoke test under a
# constrained GC target: a 1M-vertex BFS traced through the spill
# pipeline and replayed end to end must fit a 1GiB heap — less than
# half of what the materialized trace alone would need (~2GB, 127M
# records x 16B), on top of the ~600MB graph + property live set both
# pipelines share.
smoke-stream:
	GRAPHPIM_STREAM_SMOKE=1 GOMEMLIMIT=1GiB \
		$(GO) test -run '^TestStreamSmoke$$' -v -timeout 30m ./internal/harness/

# smoke-graph runs the paper-scale graph smokes. First the 11M-vertex
# twitter-shaped build (Table VII: 11M/85M) under a GC target below the
# would-be []Edge bytes (~1016MB): the streaming two-pass build's peak —
# final CSR included — must fit where the old edge list alone would not
# have. Then the LDBC-1M byte-identity check against the legacy builder,
# which needs headroom for the legacy side's materialized edge list
# (that being the point).
smoke-graph:
	GRAPHPIM_GRAPH_SMOKE=1 GOMEMLIMIT=950MiB \
		$(GO) test -run '^TestGraphSmokeTwitter11M$$' -v -timeout 30m ./internal/graph/
	GRAPHPIM_GRAPH_SMOKE=1 GOMEMLIMIT=6GiB \
		$(GO) test -run '^TestStreamEquivalenceMillion$$' -v -timeout 30m ./internal/graph/
