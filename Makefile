GO ?= go

.PHONY: build vet test race bench bench-json fuzz-short

build:
	$(GO) build ./...

# vet is the static gate: go vet plus a gofmt cleanliness check.
vet:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# The default test target runs the static gate, the plain suite, and the
# race suite: the parallel experiment engine's frozen-trace/space design
# (memoized cells replayed from many goroutines) must keep the race
# detector silent on every change.
test: build vet
	$(GO) test ./...
	$(GO) test -race ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./...

# fuzz-short runs every native fuzz target for a few seconds each,
# starting from the committed corpora in testdata/fuzz/. It is the CI
# smoke for the metamorphic harness; long exploratory sessions use
# `go test -fuzz=<target> -fuzztime=10m ./internal/<pkg>/` directly.
FUZZTIME ?= 10s
fuzz-short:
	$(GO) test -run '^$$' -fuzz '^FuzzRead$$' -fuzztime $(FUZZTIME) ./internal/trace/
	$(GO) test -run '^$$' -fuzz '^FuzzBuilder$$' -fuzztime $(FUZZTIME) ./internal/trace/
	$(GO) test -run '^$$' -fuzz '^FuzzReadEdgeList$$' -fuzztime $(FUZZTIME) ./internal/graph/
	$(GO) test -run '^$$' -fuzz '^FuzzLinkLaneReserve$$' -fuzztime $(FUZZTIME) ./internal/hmc/
	$(GO) test -run '^$$' -fuzz '^FuzzTimeq$$' -fuzztime $(FUZZTIME) ./internal/cpu/

# bench-json records the simulator throughput benchmarks (best of 3
# reps) into the committed trajectory file BENCH_pr6.json under the
# "after" phase, preserving the recorded "before" baseline. Run it after
# a performance-relevant change and commit the updated file.
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_pr6.json -phase after
