GO ?= go

.PHONY: build test race bench

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# race validates the parallel experiment engine's frozen-trace/space
# design: memoized cells replay shared immutable inputs from many
# goroutines, and the detector must stay silent.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./...
